// Command fdload drives the sharded live detector runtime
// (internal/liveshard behind internal/tcpnet) at scale over real localhost
// sockets and reports what the hot path actually achieved: sustained
// heartbeats/sec, ingest-to-estimate latency quantiles, send-path stall
// bounds, and live QoS (detection time and mistakes, via the same qos.Judge
// the simulator uses) for a cohort of peers killed mid-run.
//
// Usage:
//
//	fdload [-peers N] [-shards LIST] [-senders S] [-interval D] [-dur D]
//	       [-kill N] [-estimator heartbeat|phi] [-json FILE] [-v]
//
// The topology is one monitor process and S sender processes, each a real
// tcpnet.Transport on 127.0.0.1. The N monitored peers are *logical*: each
// sender multiplexes heartbeats for its slice of the N peer identities over
// one TCP connection (the liveshard service keys ingestion on the
// heartbeat's own From field), which is how a single-machine run reaches
// 10k peers without 10k file descriptors. Every heartbeat still crosses a
// real socket, exercises the framed wire codec, the per-connection writer
// goroutines and the sharded ingest queues.
//
// -shards is a comma-separated list of worker counts K; the whole load run
// repeats per K so reports show how throughput and ingest latency scale
// with sharding. Halfway through each run a -kill cohort of peers goes
// silent and ground truth records the instant, so the report carries real
// detection latencies measured through the full socket path.
//
// -json writes a machine-readable report (schema "asyncfd-livebench/v1",
// "-" = stdout); CHANGES to the schema bump the version. BENCH_live.json at
// the repository root is a committed run of this tool at the acceptance
// configuration (-peers 10000 -shards 1,4,16); CI regenerates a smoke-size
// run on every push and structurally validates the committed file.
//
// Unlike fdbench, numbers here are wall-clock measurements of a real
// concurrent system and are NOT byte-reproducible across runs or machines;
// the report is evidence of scale, not a golden.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asyncfd/internal/heartbeat"
	"asyncfd/internal/ident"
	"asyncfd/internal/liveshard"
	"asyncfd/internal/node"
	"asyncfd/internal/phiaccrual"
	"asyncfd/internal/qos"
	"asyncfd/internal/tcpnet"
	"asyncfd/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fdload:", err)
		os.Exit(1)
	}
}

// config is the parsed flag set for one invocation.
type config struct {
	peers     int
	shards    []int
	senders   int
	interval  time.Duration
	dur       time.Duration
	kill      int
	estimator string
	jsonPath  string
	verbose   bool
}

// report is the -json document (schema asyncfd-livebench/v1).
type report struct {
	Schema     string `json:"schema"`
	GoMaxProcs int    `json:"go_max_procs"`
	Peers      int    `json:"peers"`
	Senders    int    `json:"senders"`
	IntervalMS int64  `json:"interval_ms"`
	DurationMS int64  `json:"duration_ms"`
	Estimator  string `json:"estimator"`
	Rows       []row  `json:"rows"`
}

// row is the measurement for one shard count K.
type row struct {
	Shards    int     `json:"shards"`
	HBPerSec  float64 `json:"hb_per_sec"`
	Processed uint64  `json:"heartbeats"`

	IngestP50us int64 `json:"ingest_p50_us"`
	IngestP99us int64 `json:"ingest_p99_us"`

	// MaxSendStallMS is the worst single Send() call observed across every
	// sender; StallsOver100ms counts calls above the 100ms acceptance bound
	// (must be 0: the async send path never blocks on the network).
	MaxSendStallMS  float64 `json:"max_send_stall_ms"`
	StallsOver100ms uint64  `json:"send_stalls_over_100ms"`

	FramesSent    uint64  `json:"frames_sent"`
	FramesDropped uint64  `json:"frames_dropped"`
	Writes        uint64  `json:"writes"`
	Coalesce      float64 `json:"coalesce"` // frames per kernel write
	DroppedOldest uint64  `json:"ingest_dropped_oldest"`
	DroppedNewest uint64  `json:"ingest_dropped_newest"`

	Killed      int     `json:"killed"`
	Detected    int     `json:"detected"`
	Missed      int     `json:"missed"`
	DetectAvgMS float64 `json:"detect_avg_ms"`
	DetectMaxMS float64 `json:"detect_max_ms"`
	// FalseEpisodes counts suspicion episodes of peers that were alive and
	// heartbeating (closed + still open at the horizon).
	FalseEpisodes int `json:"false_episodes"`

	WallMS int64 `json:"wall_ms"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("fdload", flag.ContinueOnError)
	cfg := config{}
	var shardList string
	fs.IntVar(&cfg.peers, "peers", 10000, "logical monitored peers")
	fs.StringVar(&shardList, "shards", "1,4,16", "comma-separated shard counts K to sweep")
	fs.IntVar(&cfg.senders, "senders", 8, "sender processes multiplexing the peers")
	fs.DurationVar(&cfg.interval, "interval", 250*time.Millisecond, "heartbeat interval per peer")
	fs.DurationVar(&cfg.dur, "dur", 6*time.Second, "measured load duration per shard count")
	fs.IntVar(&cfg.kill, "kill", 16, "peers killed mid-run for live QoS measurement")
	fs.StringVar(&cfg.estimator, "estimator", "heartbeat", "per-peer estimator: heartbeat|phi")
	fs.StringVar(&cfg.jsonPath, "json", "", "write JSON report to FILE (\"-\" = stdout)")
	fs.BoolVar(&cfg.verbose, "v", false, "log per-phase progress to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.peers < 1 {
		return errors.New("-peers must be >= 1")
	}
	if cfg.senders < 1 {
		return errors.New("-senders must be >= 1")
	}
	if cfg.kill < 0 || cfg.kill >= cfg.peers {
		return errors.New("-kill must be in [0, peers)")
	}
	if cfg.estimator != "heartbeat" && cfg.estimator != "phi" {
		return fmt.Errorf("unknown -estimator %q (want heartbeat or phi)", cfg.estimator)
	}
	shards, err := parseShards(shardList)
	if err != nil {
		return err
	}
	cfg.shards = shards

	rep := report{
		Schema:     "asyncfd-livebench/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Peers:      cfg.peers,
		Senders:    cfg.senders,
		IntervalMS: cfg.interval.Milliseconds(),
		DurationMS: cfg.dur.Milliseconds(),
		Estimator:  cfg.estimator,
	}
	for _, k := range cfg.shards {
		r, err := runOne(cfg, k)
		if err != nil {
			return fmt.Errorf("K=%d: %w", k, err)
		}
		rep.Rows = append(rep.Rows, r)
	}

	if cfg.jsonPath != "" {
		raw, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		raw = append(raw, '\n')
		if cfg.jsonPath == "-" {
			_, err = os.Stdout.Write(raw)
			return err
		}
		return os.WriteFile(cfg.jsonPath, raw, 0o644)
	}
	renderTable(os.Stdout, rep)
	return nil
}

func parseShards(list string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(list, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		k, err := strconv.Atoi(f)
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -shards entry %q (want positive integers)", f)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, errors.New("-shards is empty")
	}
	return out, nil
}

// sender is one load-generating process: a real transport plus the slice of
// logical peer identities it heartbeats on behalf of.
type sender struct {
	tr    *tcpnet.Transport
	chunk []ident.ID
}

// stallTrack aggregates Send() latency across all sender goroutines.
type stallTrack struct {
	maxNS   atomic.Int64
	over100 atomic.Uint64
}

func (s *stallTrack) record(d time.Duration) {
	ns := int64(d)
	for {
		cur := s.maxNS.Load()
		if ns <= cur || s.maxNS.CompareAndSwap(cur, ns) {
			break
		}
	}
	if d > 100*time.Millisecond {
		s.over100.Add(1)
	}
}

// runOne executes the full load scenario at one shard count.
func runOne(cfg config, k int) (row, error) {
	logf := func(format string, a ...any) {
		if cfg.verbose {
			fmt.Fprintf(os.Stderr, "fdload: K=%d: "+format+"\n", append([]any{k}, a...)...)
		}
	}
	wallStart := time.Now()

	// Identity plan: logical peers are 0..peers-1; the monitor and the
	// sender processes use identities above that range.
	monitorID := ident.ID(cfg.peers)
	timeout := 4 * cfg.interval

	log := &trace.Log{}
	svc, err := liveshard.New(liveshard.Config{
		Self:         monitorID,
		Shards:       k,
		QueueLen:     4096,
		ScanInterval: 10 * time.Millisecond,
		NewEstimator: newEstimatorFactory(cfg.estimator, cfg.interval, timeout),
		Sink:         log,
	})
	if err != nil {
		return row{}, err
	}
	defer svc.Close()

	monitor, err := tcpnet.New(tcpnet.Config{
		Self:              monitorID,
		ListenAddr:        "127.0.0.1:0",
		Handler:           svc,
		ConcurrentDeliver: true, // the sharded service is internally synchronized
	})
	if err != nil {
		return row{}, err
	}
	defer monitor.Close()

	// Register all logical peers, then start the shard workers. The start
	// of monitoring counts as a sighting, so every peer begins trusted.
	ids := make([]ident.ID, cfg.peers)
	for i := range ids {
		ids[i] = ident.ID(i)
	}
	svc.AddPeers(ids...)
	svc.Start()

	// Senders: each multiplexes a slice of the logical peers over one real
	// connection to the monitor. The send queue is sized to a full pass so
	// a burst of heartbeats never drops on the sender side.
	senders := make([]*sender, cfg.senders)
	chunkLen := (cfg.peers + cfg.senders - 1) / cfg.senders
	for i := range senders {
		lo := i * chunkLen
		hi := lo + chunkLen
		if hi > cfg.peers {
			hi = cfg.peers
		}
		tr, err := tcpnet.New(tcpnet.Config{
			Self:       ident.ID(cfg.peers + 1 + i),
			ListenAddr: "127.0.0.1:0",
			Handler:    node.HandlerFunc(func(ident.ID, any) {}),
			SendQueue:  2*chunkLen + 64,
		})
		if err != nil {
			return row{}, err
		}
		defer tr.Close()
		tr.AddPeer(monitorID, monitor.Addr())
		var chunk []ident.ID
		if lo < hi {
			chunk = ids[lo:hi]
		}
		senders[i] = &sender{tr: tr, chunk: chunk}
	}

	// The kill cohort: the highest -kill peer identities go silent halfway
	// through the measured window. killBoundary is read atomically by the
	// sender loops; peers and ground truth share the service clock.
	killBoundary := atomic.Int64{}
	killBoundary.Store(int64(cfg.peers)) // nothing killed yet
	truth := &qos.GroundTruth{}

	var stalls stallTrack
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, sd := range senders {
		if len(sd.chunk) == 0 {
			continue
		}
		wg.Add(1)
		go func(sd *sender) {
			defer wg.Done()
			seq := uint64(0)
			for {
				seq++
				passStart := time.Now()
				boundary := ident.ID(killBoundary.Load())
				for _, id := range sd.chunk {
					if id >= boundary {
						continue
					}
					t0 := time.Now()
					sd.tr.Send(monitorID, heartbeat.Message{From: id, Seq: seq})
					stalls.record(time.Since(t0))
				}
				rest := cfg.interval - time.Since(passStart)
				if rest > 0 {
					select {
					case <-stop:
						return
					case <-time.After(rest):
					}
				} else {
					select {
					case <-stop:
						return
					default:
					}
				}
			}
		}(sd)
	}

	// Warmup: let dials complete and a couple of heartbeat passes land
	// before the measured window opens.
	warmup := 2 * cfg.interval
	if warmup < 500*time.Millisecond {
		warmup = 500 * time.Millisecond
	}
	time.Sleep(warmup)
	logf("warmup done (%v), measuring %v", warmup, cfg.dur)

	stats0 := svc.Stats()
	measureStart := time.Now()

	// Half the window in steady state, then the kill, then the rest.
	time.Sleep(cfg.dur / 2)
	killAt := svc.Now()
	killBoundary.Store(int64(cfg.peers - cfg.kill))
	for i := cfg.peers - cfg.kill; i < cfg.peers; i++ {
		truth.Crash(ident.ID(i), killAt)
	}
	logf("killed %d peers at service time %v", cfg.kill, killAt)
	time.Sleep(cfg.dur - cfg.dur/2)

	stats1 := svc.Stats()
	elapsed := time.Since(measureStart)

	// Grace period: every killed peer must cross its timeout and a scan
	// sweep before the trace is judged.
	if cfg.kill > 0 {
		time.Sleep(timeout + 250*time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for _, sd := range senders {
		sd.tr.Close()
	}
	horizon := svc.Now()
	svc.Close()
	monitor.Close()

	// Transport totals across the sender side (the monitor only receives).
	var net tcpnet.Stats
	for _, sd := range senders {
		st := sd.tr.Stats()
		net.FramesSent += st.FramesSent
		net.FramesDropped += st.FramesDropped
		net.Writes += st.Writes
	}

	// Live QoS through the simulator's judge: detection latency for the
	// killed cohort, false-suspicion episodes for everyone else.
	judge := qos.JudgeFrom(log)
	observers := ident.SetOf(monitorID)
	r := row{
		Shards:        k,
		Processed:     stats1.Processed - stats0.Processed,
		IngestP50us:   stats1.IngestP50.Microseconds(),
		IngestP99us:   stats1.IngestP99.Microseconds(),
		FramesSent:    net.FramesSent,
		FramesDropped: net.FramesDropped,
		Writes:        net.Writes,
		DroppedOldest: stats1.DroppedOldest,
		DroppedNewest: stats1.DroppedNewest,
		Killed:        cfg.kill,
	}
	r.HBPerSec = float64(r.Processed) / elapsed.Seconds()
	if net.Writes > 0 {
		r.Coalesce = float64(net.FramesSent) / float64(net.Writes)
	}
	r.MaxSendStallMS = float64(stalls.maxNS.Load()) / float64(time.Millisecond)
	r.StallsOver100ms = stalls.over100.Load()

	var detSum, detMax time.Duration
	for i := cfg.peers - cfg.kill; i < cfg.peers; i++ {
		ds := judge.DetectionTimes(truth, ident.ID(i), observers)
		if ds.Count > 0 {
			r.Detected++
			detSum += ds.Avg
			if ds.Avg > detMax {
				detMax = ds.Avg
			}
		} else {
			r.Missed++
		}
	}
	if r.Detected > 0 {
		r.DetectAvgMS = qos.Millis(detSum / time.Duration(r.Detected))
		r.DetectMaxMS = qos.Millis(detMax)
	}
	members := ident.NewSet(cfg.peers)
	for _, id := range ids {
		members.Add(id)
	}
	ms := judge.Mistakes(truth, members, horizon)
	r.FalseEpisodes = ms.Count + ms.Unresolved

	r.WallMS = time.Since(wallStart).Milliseconds()
	logf("done: %.0f hb/s, p99 ingest %dus, %d/%d detected",
		r.HBPerSec, r.IngestP99us, r.Detected, r.Killed)
	return r, nil
}

// newEstimatorFactory builds the per-peer estimator constructor for the
// sharded service.
func newEstimatorFactory(kind string, interval, timeout time.Duration) func(ident.ID, time.Duration) liveshard.PeerEstimator {
	if kind == "phi" {
		return func(_ ident.ID, now time.Duration) liveshard.PeerEstimator {
			e, err := phiaccrual.NewEstimator(phiaccrual.EstimatorConfig{
				Interval:  interval,
				Threshold: 8,
			}, now)
			if err != nil {
				panic(err) // config is validated above; interval > 0
			}
			return e
		}
	}
	return func(_ ident.ID, now time.Duration) liveshard.PeerEstimator {
		return heartbeat.NewEstimator(timeout, now)
	}
}

// renderTable prints the human-readable report.
func renderTable(w *os.File, rep report) {
	fmt.Fprintf(w, "fdload: %d peers, %d senders, %v interval, %v window, %s estimator\n",
		rep.Peers, rep.Senders, time.Duration(rep.IntervalMS)*time.Millisecond,
		time.Duration(rep.DurationMS)*time.Millisecond, rep.Estimator)
	fmt.Fprintf(w, "%6s %12s %10s %10s %12s %9s %10s %8s %7s\n",
		"K", "hb/s", "p50 ing", "p99 ing", "max stall", "coalesce", "detected", "avg det", "false")
	rows := append([]row(nil), rep.Rows...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Shards < rows[j].Shards })
	for _, r := range rows {
		fmt.Fprintf(w, "%6d %12.0f %9dµs %9dµs %10.1fms %9.1f %6d/%-3d %6.0fms %7d\n",
			r.Shards, r.HBPerSec, r.IngestP50us, r.IngestP99us,
			r.MaxSendStallMS, r.Coalesce, r.Detected, r.Killed, r.DetectAvgMS, r.FalseEpisodes)
	}
}
