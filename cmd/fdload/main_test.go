package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunErrorPaths: bad flag values must surface errors, not bogus runs.
func TestRunErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"zero peers", []string{"-peers", "0"}, "-peers"},
		{"zero senders", []string{"-senders", "0"}, "-senders"},
		{"kill >= peers", []string{"-peers", "10", "-kill", "10"}, "-kill"},
		{"bad shards", []string{"-shards", "1,zero"}, "-shards"},
		{"empty shards", []string{"-shards", ","}, "-shards"},
		{"unknown estimator", []string{"-estimator", "oracle"}, "estimator"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) error = %q, want substring %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestSmokeLoadRun is the CI gate: a small end-to-end run over real
// sockets must sustain the load with a stall-free send path, detect every
// killed peer, and produce a structurally valid report.
func TestSmokeLoadRun(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load run")
	}
	path := filepath.Join(t.TempDir(), "live.json")
	args := []string{
		"-peers", "300", "-senders", "3", "-shards", "1,2",
		"-interval", "100ms", "-dur", "1s", "-kill", "5",
		"-json", path,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "asyncfd-livebench/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if rep.Peers != 300 || len(rep.Rows) != 2 {
		t.Fatalf("report shape wrong: peers=%d rows=%d", rep.Peers, len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Processed == 0 || r.HBPerSec <= 0 {
			t.Errorf("K=%d: no load flowed: %+v", r.Shards, r)
		}
		if r.StallsOver100ms != 0 {
			t.Errorf("K=%d: %d send stalls over 100ms (max %.1fms) — the async send path blocked",
				r.Shards, r.StallsOver100ms, r.MaxSendStallMS)
		}
		if r.Missed != 0 {
			t.Errorf("K=%d: %d of %d killed peers never detected", r.Shards, r.Missed, r.Killed)
		}
		if r.Detected != 5 {
			t.Errorf("K=%d: detected = %d, want 5", r.Shards, r.Detected)
		}
		if r.IngestP99us <= 0 {
			t.Errorf("K=%d: empty ingest latency histogram", r.Shards)
		}
	}
}

// TestPhiEstimatorSmoke exercises the φ-accrual path end to end at tiny
// scale.
func TestPhiEstimatorSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("real-socket load run")
	}
	path := filepath.Join(t.TempDir(), "phi.json")
	args := []string{
		"-peers", "60", "-senders", "2", "-shards", "2",
		"-interval", "100ms", "-dur", "1s", "-kill", "2",
		"-estimator", "phi", "-json", path,
	}
	if err := run(args); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Estimator != "phi" || len(rep.Rows) != 1 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	if rep.Rows[0].Missed != 0 {
		t.Errorf("φ estimator missed %d of %d killed peers", rep.Rows[0].Missed, rep.Rows[0].Killed)
	}
}
