package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsSuite(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("-list printed %d analyzers, want 5:\n%s", len(lines), out.String())
	}
	for _, want := range []string{"maprange", "walltime", "clonefields", "errprefix", "rngdiscipline"} {
		if !strings.Contains(out.String(), want+": ") {
			t.Errorf("-list output missing analyzer %q", want)
		}
	}
}

func TestUnknownAnalyzerIsDriverError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("run(-only nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr %q does not name the unknown analyzer", errb.String())
	}
}

// TestSelfIsClean lints this package through the real go-list pipeline: the
// command tree is classified Live, carries no Snapshot methods, and must come
// back clean.
func TestSelfIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"."}, &out, &errb); code != 0 {
		t.Fatalf("run(.) = %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}
