// Command fdlint runs the asyncfd determinism lint suite over Go packages.
//
// Usage:
//
//	fdlint [-only analyzer,...] [packages ...]
//
// With no package arguments it lints ./... — every package of the asyncfd
// module, excluding test files and vendored dependencies. Findings print one
// per line as
//
//	path:line:col: message (analyzer)
//
// and the exit status is 0 when the tree is clean, 1 when there are
// findings, 2 when the driver itself fails (a package does not build, go
// list is unavailable). The suite and the invariants it enforces are
// documented in docs/LINTS.md and on the analyzers in internal/lint.
//
// The driver is unitchecker-shaped but self-contained: it asks `go list
// -export` for the package graph and compiled export data, re-parses and
// type-checks each target package from source against that export data, and
// runs the internal/lint analyzers over the typed syntax. Test files are
// deliberately out of scope — the determinism invariants bind simulation
// code, and tests routinely construct scratch RNGs and iterate maps for
// assertions.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"

	"asyncfd/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// listPkg is the subset of `go list -json` output the driver consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "print the analyzer suite and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a := byName[strings.TrimSpace(name)]
			if a == nil {
				fmt.Fprintf(stderr, "fdlint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "fdlint: %v\n", err)
		return 2
	}

	// Export data for every dependency, keyed by import path; module
	// vendoring keeps canonical paths, so no import remapping is needed.
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := &exportImporter{
		gc: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}

	var diags []lint.Diag
	broken := false
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || p.Module == nil || p.Module.Path != "asyncfd" {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(stderr, "fdlint: %s: %s\n", p.ImportPath, p.Error.Err)
			broken = true
			continue
		}
		if len(p.CgoFiles) > 0 {
			fmt.Fprintf(stderr, "fdlint: %s: skipping cgo package\n", p.ImportPath)
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		ds, err := checkPackage(fset, imp, p, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "fdlint: %s: %v\n", p.ImportPath, err)
			broken = true
			continue
		}
		diags = append(diags, ds...)
	}
	if broken {
		return 2
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "fdlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// goList loads the package graph with compiled export data for every
// dependency.
func goList(patterns []string) ([]*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errbuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errbuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, errbuf.String())
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from compiled export data, special-casing
// unsafe.
type exportImporter struct {
	gc types.Importer
}

func (e *exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return e.gc.Import(path)
}

// checkPackage parses and type-checks one target package from source, then
// runs the analyzer suite over it.
func checkPackage(fset *token.FileSet, imp types.Importer, p *listPkg,
	analyzers []*analysis.Analyzer) ([]lint.Diag, error) {

	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %v", err)
	}
	return lint.RunAnalyzers(fset, files, pkg, info, analyzers)
}
