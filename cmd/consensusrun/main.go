// Command consensusrun solves one consensus instance over the time-free
// failure detector in a simulated cluster, optionally crashing the first
// coordinator, and prints the decision timeline.
//
// Usage:
//
//	consensusrun [-n 5] [-f 2] [-crash-coordinator] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"asyncfd/internal/consensus"
	"asyncfd/internal/core"
	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
)

type duo struct {
	fdNode *core.Node
	cons   *consensus.Node
}

type demux struct{ d *duo }

func (x demux) Deliver(from ident.ID, payload any) {
	switch payload.(type) {
	case consensus.EstimateMsg, consensus.ProposalMsg, consensus.AckMsg, consensus.DecideMsg:
		if x.d.cons != nil {
			x.d.cons.Deliver(from, payload)
		}
	default:
		if x.d.fdNode != nil {
			x.d.fdNode.Deliver(from, payload)
		}
	}
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consensusrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("consensusrun", flag.ContinueOnError)
	n := fs.Int("n", 5, "number of processes")
	f := fs.Int("f", 2, "crash bound (needs 2f < n)")
	crashCoord := fs.Bool("crash-coordinator", true, "crash the round-1 coordinator before proposals")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sim := des.New(*seed)
	net := netsim.New(sim, netsim.Config{
		Delay: netsim.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond},
	})
	duos := make([]duo, *n)
	type decision struct {
		id ident.ID
		v  consensus.Value
		at time.Duration
	}
	var decisions []decision

	for i := 0; i < *n; i++ {
		id := ident.ID(i)
		env := net.AddNode(id, demux{&duos[i]})
		fdNode, err := core.NewNode(env, core.NodeConfig{
			Detector: core.Config{Self: id, N: *n, F: *f},
			Window:   10 * time.Millisecond,
			Interval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		cons, err := consensus.NewNode(env, consensus.Config{
			Self: id, N: *n, F: *f, Detector: fdNode,
			OnDecide: func(v consensus.Value) {
				decisions = append(decisions, decision{id: id, v: v, at: sim.Now()})
			},
		})
		if err != nil {
			return err
		}
		duos[i] = duo{fdNode: fdNode, cons: cons}
	}
	for i := range duos {
		duos[i].fdNode.Start()
	}

	start := 0
	if *crashCoord {
		fmt.Println("crashing round-1 coordinator p0 at t=1s")
		sim.At(time.Second, func() { net.Crash(0) })
		start = 1
	}
	for i := start; i < *n; i++ {
		v := consensus.Value(100 + i)
		cons := duos[i].cons
		sim.At(2*time.Second, func() { cons.Propose(v) })
		fmt.Printf("p%d proposes %d at t=2s\n", i, v)
	}
	sim.RunUntil(2 * time.Minute)

	sort.Slice(decisions, func(i, j int) bool { return decisions[i].at < decisions[j].at })
	fmt.Println("\ndecisions:")
	for _, d := range decisions {
		fmt.Printf("  %v decides %d at %v (latency %v)\n", d.id, d.v, d.at, d.at-2*time.Second)
	}
	if len(decisions) == 0 {
		return fmt.Errorf("no process decided")
	}
	return nil
}
