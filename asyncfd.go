// Package asyncfd is the public facade of the repository: a time-free
// (asynchronous) implementation of unreliable failure detectors after the
// DSN 2003 paper "Asynchronous Implementation of Failure Detectors"
// (Mostéfaoui, Mourgaya, Raynal), together with the substrates needed to
// run, evaluate and apply it.
//
// The detector never uses clocks or timeouts. Each process repeatedly
// broadcasts a QUERY and waits for responses from n−f processes; processes
// whose responses are not among them become suspected, and suspicions are
// flooded — with logical counters for recency, refutable by their subjects —
// inside subsequent queries. Under the paper's message-pattern assumption
// the output is a failure detector of class ◇S, which (with a correct
// majority) suffices to solve consensus.
//
// Layout of the underlying packages (importable inside this module):
//
//   - internal/core       — the protocol state machine and round runtime
//   - internal/heartbeat, internal/phiaccrual, internal/chen — timer-based baselines
//   - internal/des, internal/netsim — deterministic simulation
//   - internal/livenet, internal/tcpnet — real-time runtimes
//   - internal/consensus, internal/leader — applications (◇S consensus, Ω)
//   - internal/unknown, internal/topology — partial-connectivity extension
//   - internal/exp        — the experiment harness (tables E1–E8, A1–A2, X1–X2)
//
// The facade re-exports the types needed to embed the detector in an
// application; see examples/ for runnable programs.
package asyncfd

import (
	"asyncfd/internal/core"
	"asyncfd/internal/fd"
	"asyncfd/internal/ident"
	"asyncfd/internal/livenet"
	"asyncfd/internal/node"
)

// Core protocol types.
type (
	// ID identifies a process (p0, p1, ...).
	ID = ident.ID
	// Set is a set of process identities.
	Set = ident.Set
	// Config parameterizes the detector state machine (n, f, membership
	// mode).
	Config = core.Config
	// NodeConfig parameterizes the runtime driving the detector (round
	// window, interval, suspicion sink).
	NodeConfig = core.NodeConfig
	// Node is the runnable detector bound to an environment.
	Node = core.Node
	// Env is the runtime environment a node executes in (identity, timers,
	// asynchronous network).
	Env = node.Env
	// Handler consumes messages delivered to a process.
	Handler = node.Handler
	// Detector is the oracle interface applications read (Suspects()).
	Detector = fd.Detector
	// SuspicionSink receives timestamped suspicion transitions.
	SuspicionSink = fd.SuspicionSink
	// LiveConfig parameterizes the in-process real-time network.
	LiveConfig = livenet.Config
	// LiveNetwork is the in-process real-time network used by the
	// quickstart examples.
	LiveNetwork = livenet.Network
)

// Membership modes.
const (
	// KnownMembership: the paper's model — all n identities known, fully
	// connected, quorum n−f.
	KnownMembership = core.KnownMembership
	// UnknownMembership: the extension — membership learned from queries,
	// quorum d−f.
	UnknownMembership = core.UnknownMembership
)

// NewNode builds a detector node on the given environment. This is the main
// entry point for embedding the detector: provide an Env (for example one
// obtained from NewLiveNetwork().AddNode, or your own transport
// implementing Env) and a NodeConfig, then call Start.
func NewNode(env Env, cfg NodeConfig) (*Node, error) { return core.NewNode(env, cfg) }

// NewLiveNetwork builds an in-process real-time network (goroutines and
// channels) for running detector nodes without a simulator.
func NewLiveNetwork(cfg LiveConfig) *LiveNetwork { return livenet.New(cfg) }
