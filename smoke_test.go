package asyncfd_test

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestBinariesBuildAndRun is the compile-level regression net for the facade
// API: every main package under cmd/ and examples/ must build, and the cmd
// binaries must answer -h without hanging (examples run full simulations and
// are only built).
func TestBinariesBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skipped in -short mode")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go tool not on PATH")
	}
	root, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}

	mains := func(dir string) []string {
		entries, err := os.ReadDir(filepath.Join(root, dir))
		if err != nil {
			t.Fatalf("reading %s: %v", dir, err)
		}
		var out []string
		for _, e := range entries {
			if e.IsDir() {
				out = append(out, "./"+dir+"/"+e.Name())
			}
		}
		return out
	}
	cmds := mains("cmd")
	examples := mains("examples")
	if len(cmds) == 0 || len(examples) == 0 {
		t.Fatal("no main packages found under cmd/ or examples/")
	}

	bin := t.TempDir()
	build := exec.Command(goTool, append([]string{"build", "-o", bin + string(os.PathSeparator)}, append(cmds, examples...)...)...)
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build failed: %v\n%s", err, out)
	}

	for _, pkg := range cmds {
		pkg := pkg
		name := filepath.Base(pkg)
		t.Run(name, func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			out, _ := exec.CommandContext(ctx, filepath.Join(bin, name), "-h").CombinedOutput()
			if ctx.Err() != nil {
				t.Fatalf("%s -h did not exit", name)
			}
			// flag's -h prints the usage/flag listing; the binary must not
			// start a run.
			text := string(out)
			if !strings.Contains(text, "-seed") && !strings.Contains(strings.ToLower(text), "usage") {
				t.Errorf("%s -h produced no usage text:\n%s", name, text)
			}
		})
	}
}
