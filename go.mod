module asyncfd

go 1.22
