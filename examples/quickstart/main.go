// Quickstart: run the time-free failure detector on a live in-process
// cluster (goroutines + channels, real time), crash one process, and watch
// the survivors suspect it — no clocks, no timeouts involved in the
// detection logic itself.
package main

import (
	"fmt"
	"time"

	"asyncfd"
)

func main() {
	const (
		n = 4 // processes
		f = 1 // crash bound
	)
	net := asyncfd.NewLiveNetwork(asyncfd.LiveConfig{
		MinDelay: 200 * time.Microsecond,
		MaxDelay: 2 * time.Millisecond,
	})
	defer net.Close()

	// Suspicion transitions are reported through a sink.
	sink := sinkFunc(func(at time.Duration, observer, subject asyncfd.ID, suspected bool) {
		verb := "suspects"
		if !suspected {
			verb = "trusts again"
		}
		fmt.Printf("[%8v] %v %s %v\n", at.Round(time.Millisecond), observer, verb, subject)
	})

	nodes := make([]*asyncfd.Node, n)
	for i := 0; i < n; i++ {
		id := asyncfd.ID(i)
		cell := &handlerCell{}
		env := net.AddNode(id, cell)
		node, err := asyncfd.NewNode(env, asyncfd.NodeConfig{
			Detector: asyncfd.Config{Self: id, Membership: asyncfd.KnownMembership, N: n, F: f},
			Window:   10 * time.Millisecond, // extra response collection per round
			Interval: 25 * time.Millisecond, // pause between query rounds
			Sink:     sink,
		})
		if err != nil {
			panic(err)
		}
		cell.node = node
		nodes[i] = node
	}
	for _, nd := range nodes {
		nd.Start()
	}

	fmt.Println("cluster running; all processes answering queries...")
	time.Sleep(300 * time.Millisecond)

	fmt.Println("crashing p3...")
	net.Crash(3)
	time.Sleep(500 * time.Millisecond)

	for i := 0; i < 3; i++ {
		fmt.Printf("%v final suspects: %v\n", asyncfd.ID(i), nodes[i].Suspects())
	}
	for _, nd := range nodes {
		nd.Stop()
	}
}

// handlerCell breaks the env↔node construction cycle.
type handlerCell struct{ node *asyncfd.Node }

func (c *handlerCell) Deliver(from asyncfd.ID, payload any) {
	if c.node != nil {
		c.node.Deliver(from, payload)
	}
}

// sinkFunc adapts a function to asyncfd.SuspicionSink.
type sinkFunc func(at time.Duration, observer, subject asyncfd.ID, suspected bool)

func (f sinkFunc) OnSuspicion(at time.Duration, observer, subject asyncfd.ID, suspected bool) {
	f(at, observer, subject, suspected)
}
