// MANET (extension): the detector in its unknown-membership,
// partial-connectivity form — nodes know only themselves initially, learn
// their radio neighborhood from received queries, and flood suspicions
// across hops. One node then moves to the other side of the network; the
// mobility rule lets both sides converge after the ping-pong of suspicions
// and refutations.
//
// This is NOT part of the reproduced DSN 2003 paper; it is the extension
// direction its future work points to (INRIA RR-6088). See README.md.
package main

import (
	"fmt"
	"os"
	"time"

	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/topology"
	"asyncfd/internal/unknown"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "manet:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n = 16
		k = 3 // circulant chords: degree 6, range density d = 7
		f = 2
	)
	g := topology.Circulant(n, k)
	fmt.Printf("topology: circulant ring of %d nodes, range density d=%d, f=%d (quorum d-f=%d)\n",
		n, g.RangeDensity(), f, g.RangeDensity()-f)
	fmt.Printf("f-covering ((f+1)-connected): %v\n\n", g.IsFCovering(f))

	c, err := unknown.NewCluster(unknown.ClusterConfig{
		Graph: g, F: f, Seed: 3,
		Delay:       netsim.Uniform{Min: 500 * time.Microsecond, Max: 3 * time.Millisecond},
		Window:      50 * time.Millisecond,
		Interval:    100 * time.Millisecond,
		Rebroadcast: 500 * time.Millisecond,
		Mobility:    true,
	})
	if err != nil {
		return err
	}

	c.RunUntil(2 * time.Second)
	fmt.Printf("after 2s, p0 has discovered its range: known = %v\n", c.Node(0).Known())

	// p0 moves: detaches at 5s, reattaches across the ring at 10s.
	newRange := ident.SetOf(6, 7, 8, 9, 10, 11)
	fmt.Printf("\np0 detaches at t=5s and reattaches at t=10s next to %v\n", newRange)
	c.RelocateAt(0, newRange, 5*time.Second, 10*time.Second)

	c.RunUntil(8 * time.Second)
	fmt.Printf("t=8s (p0 away): p1 (old neighbor) suspects %v\n", c.Detector(1).Suspects())

	c.RunUntil(11 * time.Second)
	fmt.Printf("t=11s (just reattached): p0 suspects %v (its old range is silent for it now)\n",
		c.Detector(0).Suspects())

	c.RunUntil(90 * time.Second)
	fmt.Println("\nt=90s: mistakes have flooded and the mobility rule pruned stale members:")
	fmt.Printf("  p0 known = %v, suspects %v\n", c.Node(0).Known(), c.Detector(0).Suspects())
	fmt.Printf("  p1 known = %v, suspects %v\n", c.Node(1).Known(), c.Detector(1).Suspects())
	fmt.Println("  (known sets oscillate by design: evicted members are re-learned from their next queries)")

	falseSusp := 0
	for i := 0; i < n; i++ {
		falseSusp += c.Detector(ident.ID(i)).Suspects().Len()
	}
	fmt.Printf("\ntotal lingering suspicions across the network: %d\n", falseSusp)
	if falseSusp != 0 {
		return fmt.Errorf("network did not converge")
	}
	return nil
}
