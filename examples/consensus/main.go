// Consensus: the point of a ◇S failure detector is that it makes consensus
// solvable in an asynchronous system with a correct majority. This example
// runs Chandra–Toueg rotating-coordinator consensus on top of the time-free
// detector while the first coordinator is crashed — the detector's
// suspicions are what lets the protocol rotate past the dead coordinator.
package main

import (
	"fmt"
	"os"
	"time"

	"asyncfd/internal/consensus"
	"asyncfd/internal/core"
	"asyncfd/internal/des"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
)

type duo struct {
	fdNode *core.Node
	cons   *consensus.Node
}

type demux struct{ d *duo }

func (x demux) Deliver(from ident.ID, payload any) {
	switch payload.(type) {
	case consensus.EstimateMsg, consensus.ProposalMsg, consensus.AckMsg, consensus.DecideMsg:
		x.d.cons.Deliver(from, payload)
	default:
		x.d.fdNode.Deliver(from, payload)
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "consensus:", err)
		os.Exit(1)
	}
}

func run() error {
	const n, f = 5, 2
	sim := des.New(7)
	net := netsim.New(sim, netsim.Config{
		Delay: netsim.Uniform{Min: time.Millisecond, Max: 4 * time.Millisecond},
	})

	duos := make([]duo, n)
	for i := 0; i < n; i++ {
		id := ident.ID(i)
		env := net.AddNode(id, demux{&duos[i]})
		fdNode, err := core.NewNode(env, core.NodeConfig{
			Detector: core.Config{Self: id, N: n, F: f},
			Window:   10 * time.Millisecond,
			Interval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		cons, err := consensus.NewNode(env, consensus.Config{
			Self: id, N: n, F: f, Detector: fdNode,
			OnDecide: func(v consensus.Value) {
				fmt.Printf("  %v decides %d at t=%v\n", id, v, sim.Now().Round(time.Millisecond))
			},
		})
		if err != nil {
			return err
		}
		duos[i] = duo{fdNode: fdNode, cons: cons}
	}
	for i := range duos {
		duos[i].fdNode.Start()
	}

	fmt.Println("p0 (round-1 coordinator) crashes at t=500ms; survivors propose at t=2s")
	sim.At(500*time.Millisecond, func() { net.Crash(0) })
	for i := 1; i < n; i++ {
		v := consensus.Value(10 * i)
		cons := duos[i].cons
		fmt.Printf("  p%d will propose %d\n", i, v)
		sim.At(2*time.Second, func() { cons.Propose(v) })
	}
	fmt.Println("decisions:")
	sim.RunUntil(time.Minute)

	for i := 1; i < n; i++ {
		if _, ok := duos[i].cons.Decided(); !ok {
			return fmt.Errorf("p%d did not decide", i)
		}
	}
	return nil
}
