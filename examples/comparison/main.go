// Comparison: the same crash scenario on the same simulated network, judged
// across all four detector implementations — the paper's time-free
// query–response detector against the fixed-timeout heartbeat, φ-accrual and
// Chen NFD-E baselines. The time-free detector needs no timing assumption
// and detects within roughly one query period.
package main

import (
	"fmt"
	"os"
	"time"

	"asyncfd/internal/exp"
	"asyncfd/internal/faults"
	"asyncfd/internal/ident"
	"asyncfd/internal/netsim"
	"asyncfd/internal/qos"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		n       = 10
		f       = 3
		crashAt = 10400 * time.Millisecond
		horizon = 30 * time.Second
	)
	crash := ident.ID(n - 1)

	fmt.Printf("scenario: n=%d f=%d, %v crashes at %v, exponential delays (~1ms)\n\n", n, f, crash, crashAt)
	fmt.Printf("%-12s  %-10s  %-10s  %-10s\n", "detector", "avg", "min", "max")

	for _, kind := range exp.AllKinds() {
		c, err := exp.NewCluster(exp.ClusterConfig{
			Kind: kind, N: n, F: f, Seed: 42,
			Delay: netsim.Exponential{Min: 500 * time.Microsecond, Mean: 700 * time.Microsecond, Cap: 50 * time.Millisecond},
		})
		if err != nil {
			return err
		}
		truth := c.Apply(faults.Schedule{}.CrashAt(crash, crashAt))
		c.RunUntil(horizon)

		observers := c.Members.Clone()
		observers.Remove(crash)
		det := qos.DetectionTimes(c.Log, truth, crash, observers)
		fmt.Printf("%-12s  %-10v  %-10v  %-10v\n",
			kind, det.Avg.Round(time.Millisecond), det.Min.Round(time.Millisecond), det.Max.Round(time.Millisecond))
	}

	fmt.Println("\nThe heartbeat detector lands in its [Θ−Δ, Θ] = [1s, 2s] band; the time-free")
	fmt.Println("detector detects within about one query period without any timeout to tune.")
	return nil
}
