// Livecluster: the detector over real TCP sockets on localhost. Three
// processes exchange queries and responses through length-prefixed frames;
// one endpoint is torn down and the survivors suspect it. The same core
// protocol node runs here as in the simulator — only the Env differs.
package main

import (
	"fmt"
	"os"
	"time"

	"asyncfd/internal/core"
	"asyncfd/internal/ident"
	"asyncfd/internal/tcpnet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livecluster:", err)
		os.Exit(1)
	}
}

type cell struct{ n *core.Node }

func (c *cell) Deliver(from ident.ID, payload any) {
	if c.n != nil {
		c.n.Deliver(from, payload)
	}
}

func run() error {
	const n, f = 3, 1
	transports := make([]*tcpnet.Transport, n)
	nodes := make([]*core.Node, n)

	for i := 0; i < n; i++ {
		c := &cell{}
		tr, err := tcpnet.New(tcpnet.Config{
			Self:       ident.ID(i),
			ListenAddr: "127.0.0.1:0",
			Handler:    c,
		})
		if err != nil {
			return err
		}
		transports[i] = tr
		nd, err := core.NewNode(tr, core.NodeConfig{
			Detector: core.Config{Self: ident.ID(i), N: n, F: f},
			Window:   20 * time.Millisecond,
			Interval: 50 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		c.n = nd
		nodes[i] = nd
	}
	defer func() {
		for _, tr := range transports {
			tr.Close()
		}
	}()
	for i := 0; i < n; i++ {
		fmt.Printf("p%d listening on %s\n", i, transports[i].Addr())
		for j := 0; j < n; j++ {
			if i != j {
				transports[i].AddPeer(ident.ID(j), transports[j].Addr())
			}
		}
	}
	for _, nd := range nodes {
		nd.Start()
	}

	time.Sleep(400 * time.Millisecond)
	fmt.Printf("\nsteady state: p0 suspects %v, p1 suspects %v\n",
		nodes[0].Suspects(), nodes[1].Suspects())

	fmt.Println("tearing down p2's endpoint...")
	nodes[2].Stop()
	transports[2].Close()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[0].IsSuspected(2) && nodes[1].IsSuspected(2) {
			fmt.Printf("\np0 suspects %v, p1 suspects %v — crash detected over real sockets\n",
				nodes[0].Suspects(), nodes[1].Suspects())
			nodes[0].Stop()
			nodes[1].Stop()
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("survivors did not suspect the dead endpoint")
}
